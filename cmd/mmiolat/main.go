// Command mmiolat regenerates Table II: the latency of a 4-byte MMIO
// read from a NIC register as the root complex processing latency
// sweeps from 50 to 150 ns (§VI-B).
package main

import (
	"flag"
	"fmt"
	"os"

	"pciesim"
)

func main() {
	jobs := flag.Int("jobs", 1, "parallel simulation runs (-1 = one per CPU)")
	flag.Parse()
	rows, err := pciesim.RunTableII(*jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmiolat: %v\n", err)
		os.Exit(1)
	}
	paper := map[int]int{50: 318, 75: 358, 100: 398, 125: 438, 150: 517}
	fmt.Println("Table II — root complex latency vs MMIO read access time")
	fmt.Printf("%-26s", "root complex latency (ns)")
	for _, r := range rows {
		fmt.Printf("%8d", r.RCLatencyNs)
	}
	fmt.Printf("\n%-26s", "MMIO read latency (ns)")
	for _, r := range rows {
		fmt.Printf("%8.0f", r.MMIOLatencyNs)
	}
	fmt.Printf("\n%-26s", "paper (ns)")
	for _, r := range rows {
		fmt.Printf("%8d", paper[r.RCLatencyNs])
	}
	fmt.Println()
}

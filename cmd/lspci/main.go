// Command lspci boots the simulated platform, then dumps the
// enumerated PCI hierarchy the way the Linux lspci tool would: one
// line per function with -v adding BARs, bridge windows, interrupt
// lines and the capability chain.
package main

import (
	"flag"
	"fmt"
	"os"

	"pciesim"
	"pciesim/internal/kernel"
	"pciesim/internal/pci"
)

func main() {
	verbose := flag.Bool("v", false, "verbose: BARs, windows, capabilities")
	hexdump := flag.Bool("x", false, "hex-dump the first 64 bytes of each config space (implies -v)")
	flag.Parse()
	if *hexdump {
		*verbose = true
	}

	s := pciesim.New(pciesim.DefaultConfig())
	topo, err := s.Boot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lspci: %v\n", err)
		os.Exit(1)
	}
	for _, d := range topo.All {
		fmt.Printf("%v %s: %s [%04x:%04x]\n",
			d.BDF, className(d.ClassCode), deviceName(d), d.VendorID, d.DeviceID)
		if !*verbose {
			continue
		}
		if d.IsBridge {
			fmt.Printf("\tBus: primary=%02x secondary=%02x subordinate=%02x\n",
				d.BDF.Bus, d.Secondary, d.Subordinate)
		}
		for _, b := range d.BARs {
			kind := "Memory"
			if b.IsIO {
				kind = "I/O ports"
			}
			fmt.Printf("\tRegion %d: %s at %#x [size=%d]\n", b.Index, kind, b.Addr, b.Size)
		}
		if !d.IsBridge {
			fmt.Printf("\tInterrupt: pin A routed to IRQ %d\n", d.IRQ)
		}
		if cs, ok := s.PCIHost.Lookup(d.BDF); ok {
			for _, id := range pci.CapabilityChain(cs) {
				fmt.Printf("\tCapabilities: %s\n", capName(id))
			}
			for _, id := range pci.WalkExtendedCapabilities(cs) {
				fmt.Printf("\tExtended capabilities: %s\n", extCapName(id))
			}
			if *hexdump {
				dumpHeader(cs)
			}
		}
	}
}

// dumpHeader prints the standard 64-byte header like lspci -x.
func dumpHeader(cs pci.ConfigAccessor) {
	for row := 0; row < 64; row += 16 {
		fmt.Printf("%02x:", row)
		for b := 0; b < 16; b++ {
			fmt.Printf(" %02x", cs.ConfigRead(row+b, 1))
		}
		fmt.Println()
	}
}

func deviceName(d *kernel.FoundDevice) string {
	switch {
	case d.DeviceID == pci.Device82574L:
		return "82574L Gigabit Network Connection (8254x-pcie model)"
	case d.DeviceID == 0x2922:
		return "SATA AHCI Controller (IDE disk model)"
	case d.DeviceID == pci.DeviceWildcatPort0, d.DeviceID == pci.DeviceWildcatPort1,
		d.DeviceID == pci.DeviceWildcatPort2:
		return "Wildcat Point PCI Express Root Port (VP2P)"
	case d.IsBridge:
		return "PCI Express switch port (VP2P)"
	default:
		return "Unknown device"
	}
}

func className(class uint32) string {
	switch class >> 16 {
	case 0x01:
		return "Mass storage controller"
	case 0x02:
		return "Ethernet controller"
	case 0x06:
		return "PCI bridge"
	default:
		return fmt.Sprintf("Class %06x", class)
	}
}

func capName(id uint8) string {
	switch id {
	case pci.CapIDPowerManagement:
		return "Power Management"
	case pci.CapIDMSI:
		return "MSI (disabled by the model; driver falls back to INTx)"
	case pci.CapIDPCIExpress:
		return "PCI Express"
	case pci.CapIDMSIX:
		return "MSI-X (disabled by the model)"
	default:
		return fmt.Sprintf("Capability %#02x", id)
	}
}

func extCapName(id uint16) string {
	switch id {
	case pci.ExtCapIDAER:
		return "Advanced Error Reporting"
	case pci.ExtCapIDSerialNumber:
		return "Device Serial Number"
	default:
		return fmt.Sprintf("Extended capability %#04x", id)
	}
}

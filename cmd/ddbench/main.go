// Command ddbench regenerates the dd-throughput figures of the paper's
// evaluation (Fig 9(a)-(d)) and prints Table I.
//
// Usage:
//
//	ddbench [-fig 9a|9b|9c|9d|err|fc|degrade|lat|scen|wl|all] [-scale N] [-jobs N] [-par N] [-csv] [-table1]
//
// -scale divides the paper's 64-512 MiB block sizes (and dd's fixed
// startup overhead) by N; 1 reproduces the full-size experiment, the
// default 16 runs in a couple of minutes with an identical curve.
//
// -jobs fans a figure's independent (series, block-size) runs across N
// workers. Each run is its own single-threaded simulation, so the
// output is byte-identical at any job count; -jobs -1 uses every CPU.
//
// -par splits each simulation itself into N timing domains run by the
// conservative parallel engine (DESIGN.md §15). Orthogonal to -jobs,
// and likewise byte-identical to the serial engine at any value;
// configurations the parallel engine cannot express (fault plans on
// the cut links, platform-wide degradation, DPC) fall back to serial.
//
// The observability flags apply per run within a sweep: with
// `-stats-out stats.json` each (series, block-size) point writes
// stats-<series>@<block>MB.json, and `-trace trace.json` likewise
// writes one Chrome trace per run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"pciesim"
	"pciesim/internal/obscli"
	"pciesim/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 9a, 9b, 9c, 9d, err, fc, degrade, lat, scen, wl or all")
	topoSpec := flag.String("topo", "", "sweep block sizes over an arbitrary topology: a canned scenario name or a spec like \"switch:x4(disk*8)\"")
	scale := flag.Int("scale", 16, "divide the paper's block sizes by this factor")
	jobs := flag.Int("jobs", 1, "parallel simulation runs (-1 = one per CPU); output is identical at any value")
	par := flag.Int("par", 0, "timing domains per simulation for the conservative parallel engine (0 or 1 = serial); output is identical at any value")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	table1 := flag.Bool("table1", false, "also print Table I (protocol overheads)")
	var obs obscli.Flags
	obs.Register(flag.CommandLine)
	flag.Parse()

	if *table1 {
		printTableI()
	}

	opt := pciesim.Options{Scale: *scale, Jobs: *jobs, Par: *par}
	if obs.Active() {
		// One armed copy per run; dumps are suffixed with the run label.
		// Observe runs concurrently under -jobs, so the map is locked;
		// ObserveDone is serialized by the sweep runner.
		var mu sync.Mutex
		armed := make(map[*sim.Engine]*obscli.Flags)
		opt.Observe = func(eng *sim.Engine, label string) error {
			f := obs.ForRun(label)
			if err := f.Arm(eng); err != nil {
				return err
			}
			mu.Lock()
			armed[eng] = f
			mu.Unlock()
			return nil
		}
		opt.ObserveDone = func(eng *sim.Engine, label string) error {
			mu.Lock()
			f := armed[eng]
			delete(armed, eng)
			mu.Unlock()
			if f.Stats {
				fmt.Printf("--- stats: %s ---\n", label)
			}
			return f.Finish(eng)
		}
	}
	if *topoSpec != "" {
		result, err := pciesim.RunTopoSweep(*topoSpec, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddbench: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(result.CSV())
		} else {
			fmt.Println(result.Format())
		}
		return
	}

	runners := map[string]func(pciesim.Options) (pciesim.Figure, error){
		"9a": pciesim.RunFig9a,
		"9b": pciesim.RunFig9b,
		"9c": pciesim.RunFig9c,
		"9d": pciesim.RunFig9d,
	}
	// order is the -fig all sequence and doubles as the list of valid
	// figure names ("scen" is opt-in only: it is a scenario report, not
	// a paper figure).
	order := []string{"9a", "9b", "9c", "9d", "err", "fc", "degrade"}

	selected := order
	if *fig != "all" {
		// "scen", "lat" and "wl" are opt-in only: reports, not paper
		// figures.
		valid := *fig == "scen" || *fig == "lat" || *fig == "wl"
		for _, id := range order {
			if *fig == id {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "ddbench: unknown figure %q; valid names: %s, lat, scen, wl, all\n",
				*fig, strings.Join(order, ", "))
			os.Exit(2)
		}
		selected = []string{*fig}
	}
	for _, id := range selected {
		if id == "err" {
			runFigErr(opt, *csv)
			continue
		}
		if id == "lat" {
			runFigLat(opt, *csv)
			continue
		}
		if id == "wl" {
			runFigWL(opt, *csv)
			continue
		}
		if id == "fc" {
			runFigFC(opt, *csv)
			continue
		}
		if id == "degrade" {
			runFigDegrade(opt, *csv)
			continue
		}
		if id == "scen" {
			report, err := pciesim.RunScenarios(nil, opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ddbench: %v\n", err)
				os.Exit(1)
			}
			if *csv {
				fmt.Print(report.CSV())
			} else {
				fmt.Print(report.Format())
			}
			continue
		}
		result, err := runners[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddbench: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(result.CSV())
		} else {
			fmt.Println(result.Format())
		}
	}
}

// runFigLat runs the latency-attribution comparison: the same dd
// write with healthy and credit-starved links, spans armed, reporting
// where each microsecond went per segment.
func runFigLat(opt pciesim.Options, csv bool) {
	result, err := pciesim.RunFigLat(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddbench: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(result.CSV())
	} else {
		fmt.Println(result.Format())
	}
}

// runFigWL runs the workload-engine figure: Poisson vs bursty NIC
// receive traffic at equal offered load, the random-read contention
// matrix, and the trace capture/replay byte-identity check.
func runFigWL(opt pciesim.Options, csv bool) {
	result, err := pciesim.RunFigWL(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddbench: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(result.CSV())
	} else {
		fmt.Println(result.Format())
	}
}

// runFigFC runs the flow-control credit sweep: a dd write over a
// long-latency link with a shrinking completion-credit pool.
func runFigFC(opt pciesim.Options, csv bool) {
	result, err := pciesim.RunFigFC(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddbench: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(result.CSV())
	} else {
		fmt.Println(result.Format())
	}
}

// runFigDegrade runs the adaptive-degradation staircase: dd on an x4
// Gen2 disk link held at each (Gen, Width) ladder level, plus a run
// that upgrade-retrains back to full speed mid-transfer.
func runFigDegrade(opt pciesim.Options, csv bool) {
	result, err := pciesim.RunFigDegrade(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddbench: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(result.CSV())
	} else {
		fmt.Println(result.Format())
	}
}

// runFigErr runs the error-containment sweep: dd against a disk link
// with stochastic corruption, a retrained down-window, and a dead link.
func runFigErr(opt pciesim.Options, csv bool) {
	result, err := pciesim.RunFigErr(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddbench: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(result.CSV())
	} else {
		fmt.Println(result.Format())
	}
}

func printTableI() {
	fmt.Println("Table I — transaction, data link, and physical layer overheads")
	fmt.Printf("%-14s %-50s %s\n", "Overhead", "Type of Overhead", "Packet Type")
	for _, r := range pciesim.TableI() {
		fmt.Printf("%-14s %-50s %s\n", r.Overhead, r.Type, r.PacketType)
	}
	fmt.Println()
}

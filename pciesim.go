// Package pciesim is a discrete-event simulator of the PCI-Express
// interconnect and the full-system substrate around it, reproducing
// "Simulating PCI-Express Interconnect for Future System Exploration"
// (Alian, Srinivasan, Kim — IISWC 2018).
//
// The package offers three levels of API:
//
//   - System: the assembled platform (CPU/OS model, MemBus, IOCache,
//     DRAM, PCI host, root complex, switch, links, disk, NIC). Build
//     one with New(DefaultConfig()), Boot it, and drive workloads.
//   - Experiments: one runner per table/figure of the paper's
//     evaluation (RunFig9a..RunFig9d, RunTableII, TableI), producing
//     structured results that the cmd/ddbench and cmd/mmiolat tools
//     print.
//   - Components: the building blocks live in internal/ packages and
//     are re-exported here where they are part of the public surface
//     (configuration types, link generations, results).
package pciesim

import (
	"io"

	"pciesim/internal/fault"
	"pciesim/internal/kernel"
	"pciesim/internal/pcie"
	"pciesim/internal/phys"
	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/system"
	"pciesim/internal/topo"
	"pciesim/internal/trace"
	"pciesim/internal/workload"
)

// Config is the full platform configuration. Obtain a calibrated
// baseline from DefaultConfig and override individual fields.
type Config = system.Config

// System is the assembled simulated platform.
type System = system.System

// DDResult reports one dd run.
type DDResult = kernel.DDResult

// LatencySummary condenses a per-request latency distribution into
// printable quantiles.
type LatencySummary = kernel.LatencySummary

// MMIOProbeResult reports an MMIO latency measurement.
type MMIOProbeResult = kernel.MMIOProbeResult

// Generation selects a PCI-Express generation for links.
type Generation = pcie.Generation

// LinkStats are the per-link-interface protocol counters (replays,
// timeouts, ACK traffic, flow-control stalls).
type LinkStats = pcie.LinkStats

// CreditConfig are per-class (Posted / Non-Posted / Completion) VC0
// flow-control credit pools. The zero value means infinite credits —
// the legacy refusal-only link. Assign one to Config.Credits (every
// link) or to a topology node's LinkSpec.Credits (one link).
type CreditConfig = pcie.CreditConfig

// UniformCredits builds a CreditConfig with n header credits per class
// and data credits for n 64-byte payloads.
func UniformCredits(n int) CreditConfig { return pcie.UniformCredits(n) }

// ParseCredits parses the CLI credit syntax: "" / "inf" for infinite,
// a bare integer for UniformCredits, or "ph=8,ch=2"-style k=v pairs.
func ParseCredits(s string) (CreditConfig, error) { return pcie.ParseCredits(s) }

// PCI-Express generations.
const (
	Gen1 = pcie.Gen1
	Gen2 = pcie.Gen2
	Gen3 = pcie.Gen3
)

// Tick is simulated time (picoseconds); Config durations such as
// CompletionTimeout and FaultWindow.At are expressed in it.
type Tick = sim.Tick

// Time units for building Tick values.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// PhysConfig describes the analytical physical-testbed reference model
// used for the "phys" series of Fig 9(a).
type PhysConfig = phys.Config

// FaultPlan is a deterministic per-link fault-injection schedule:
// stochastic TLP/DLLP corruption and drop rates per direction, scripted
// one-shot events, and surprise link-down windows. Assign one to
// Config.UplinkFault, Config.DiskLinkFault or Config.NICLinkFault.
type FaultPlan = fault.Plan

// FaultRates are per-packet injection probabilities.
type FaultRates = fault.Rates

// FaultProfile configures one direction of a faulted link.
type FaultProfile = fault.Profile

// FaultWindow is a surprise link-down interval; Duration 0 keeps the
// link down for good.
type FaultWindow = fault.Window

// FaultEvent is one scripted injection (the Nth matching packet).
type FaultEvent = fault.Event

// FaultHotplug is one surprise-removal episode: the card is yanked at
// RemoveAt and — unless ReinsertAfter is zero (permanent) — re-seated
// ReinsertAfter later. Assign to FaultPlan.Hotplugs.
type FaultHotplug = fault.Hotplug

// DegradeConfig arms adaptive link degradation: sustained error
// windows retrain the link at reduced width/generation, with
// exponential-backoff upgrade retrains back toward the configured
// level. Assign to Config.Degrade (every link) or a topology node's
// LinkSpec.Degrade (one link).
type DegradeConfig = pcie.DegradeConfig

// DefaultDegradeConfig returns the calibrated degradation policy.
func DefaultDegradeConfig() DegradeConfig { return pcie.DefaultDegradeConfig() }

// RecoveryConfig tunes the kernel's DPC/hot-plug recovery driver
// (Config.Recovery); zero-value fields take defaults.
type RecoveryConfig = kernel.RecoveryConfig

// RecoveryRecord is one completed recovery attempt in the kernel
// recovery driver's log (System.Recovery.Records()).
type RecoveryRecord = kernel.RecoveryRecord

// AERRecord is one entry of the kernel AER service handler's log.
type AERRecord = kernel.AERRecord

// LinkErrorSummary pairs a link's name with both directions' error
// counters and its recovery state.
type LinkErrorSummary = system.LinkErrorSummary

// --- observability (DESIGN.md §8) ---

// StatsRegistry is the simulator-wide hierarchical metric registry;
// reach a platform's registry through System.Eng.Stats().
type StatsRegistry = stats.Registry

// StatsHistogram is a log2-bucketed latency/size distribution.
type StatsHistogram = stats.Histogram

// Tracer records tick-stamped per-packet lifecycle events; install one
// with System.Eng.SetTracer before running workloads.
type Tracer = trace.Tracer

// TraceCategory selects which event classes a Tracer records.
type TraceCategory = trace.Category

// TraceEvent is one recorded tracer event.
type TraceEvent = trace.Event

// Trace categories.
const (
	TraceTLP    = trace.CatTLP
	TraceDLLP   = trace.CatDLLP
	TraceDMA    = trace.CatDMA
	TraceIRQ    = trace.CatIRQ
	TraceFault  = trace.CatFault
	TraceConfig = trace.CatConfig
	TraceSpan   = trace.CatSpan
	TraceAll    = trace.CatAll
)

// NewTracer creates a tracer recording the given categories.
func NewTracer(mask TraceCategory) *Tracer { return trace.New(mask) }

// ParseTraceCategories parses a comma-separated category list
// ("tlp,fault") or "all".
func ParseTraceCategories(s string) (TraceCategory, error) { return trace.ParseCategories(s) }

// TraceCategoryNames lists the parseable category names.
func TraceCategoryNames() []string { return trace.CategoryNames() }

// Profiler is the engine self-profiler: per-event-name fire counts,
// same-tick re-schedule counts, and wall-clock attribution. Arm one
// with System.Eng.Profile() before the run; counts are deterministic,
// wall-clock is host-dependent.
type Profiler = sim.Profiler

// --- arbitrary topologies (DESIGN.md §10) ---

// TopoSpec is a declarative fabric description: root ports, cascaded
// switches, endpoints. Build one in Go, with ParseTopo, or take a
// canned scenario from CannedTopo.
type TopoSpec = topo.Spec

// TopoNode is one element of a TopoSpec tree.
type TopoNode = topo.Node

// TopoConfig is the topology-independent platform configuration used
// by BuildTopo.
type TopoConfig = topo.Config

// TopoSystem is a platform assembled from a TopoSpec: the validation
// substrate under an arbitrary fabric.
type TopoSystem = topo.System

// ParseTopo parses the compact topology grammar ("switch:x4(disk*8)")
// or, when the input starts with "{", the JSON form of TopoSpec.
func ParseTopo(s string) (*TopoSpec, error) { return topo.Parse(s) }

// CannedTopo resolves a canned scenario name ("validation", "fanout8",
// "p2p") to its spec, or nil.
func CannedTopo(name string) *TopoSpec { return topo.Canned(name) }

// CannedTopoNames lists the canned scenario names.
func CannedTopoNames() []string { return topo.CannedNames() }

// DefaultTopoConfig returns the calibrated baseline build config.
func DefaultTopoConfig() TopoConfig { return topo.DefaultConfig() }

// BuildTopo assembles a platform from a topology spec.
func BuildTopo(spec *TopoSpec, cfg TopoConfig) (*TopoSystem, error) { return topo.Build(spec, cfg) }

// --- workload engines (DESIGN.md §14) ---

// WorkloadTrace is a versioned, replayable operation schedule: either
// parsed from the text/JSON trace format or materialized by the
// synthetic generators. Executing the same trace on the same platform
// configuration reproduces the stats dump byte-for-byte.
type WorkloadTrace = workload.Trace

// WorkloadOp is one trace record (op, tick, endpoint, addr, len).
type WorkloadOp = workload.Op

// WorkloadFlowSpec describes one synthetic flow for SynthesizeWorkload.
type WorkloadFlowSpec = workload.FlowSpec

// WorkloadRunConfig tunes the workload executor.
type WorkloadRunConfig = workload.RunConfig

// WorkloadResult reports a workload run's per-flow goodput and latency.
type WorkloadResult = workload.Result

// WorkloadFlowResult is one flow of a WorkloadResult.
type WorkloadFlowResult = workload.FlowResult

// WorkloadEngine is a named generator preset (arrival process + op
// kind), the unit pciesim's -workload flag selects.
type WorkloadEngine = workload.Engine

// Workload arrival processes and op kinds.
const (
	WorkloadPoisson = workload.ArrivalPoisson
	WorkloadBursty  = workload.ArrivalBursty
	WorkloadOpRx    = workload.OpRx
	WorkloadOpTx    = workload.OpTx
	WorkloadOpRead  = workload.OpRead
	WorkloadOpWrite = workload.OpWrite
)

// ParseWorkloadTrace parses a trace in either wire form (text or JSON).
func ParseWorkloadTrace(r io.Reader) (*WorkloadTrace, error) { return workload.Parse(r) }

// SynthesizeWorkload materializes seeded synthetic flows into a trace;
// the result is deterministic in the specs alone.
func SynthesizeWorkload(flows []WorkloadFlowSpec) (*WorkloadTrace, error) {
	return workload.Synthesize(flows)
}

// RunWorkload executes a trace against a topology platform.
func RunWorkload(sys *TopoSystem, tr *WorkloadTrace, cfg WorkloadRunConfig) (WorkloadResult, error) {
	return workload.Run(sys, tr, cfg)
}

// ParseWorkloadEngine resolves a "-workload" engine name
// ("poisson-rx", "bursty-read"); unknown names error with the full
// valid-name list.
func ParseWorkloadEngine(s string) (WorkloadEngine, error) { return workload.ParseEngine(s) }

// WorkloadEngineNames lists the valid engine names.
func WorkloadEngineNames() []string { return workload.EngineNames() }

// DefaultConfig returns the paper's validated baseline configuration.
func DefaultConfig() Config { return system.DefaultConfig() }

// DefaultPhysConfig returns the §VI-A physical testbed parameters.
func DefaultPhysConfig() PhysConfig { return phys.DefaultConfig() }

// New builds a platform from the configuration.
func New(cfg Config) *System { return system.New(cfg) }

package pciesim

import (
	"strings"
	"testing"
)

// Shape assertions for the reproduced evaluation: these encode the
// qualitative claims of §VI-B (who wins, orderings, where effects
// appear), not absolute numbers. They run at 64x scale to stay fast;
// the bench harness and cmd/ddbench regenerate the full curves.

func testOptions() Options {
	return Options{Scale: 64, BlockMB: []int{64, 256}}
}

func lastGbps(s Series) float64 { return s.Points[len(s.Points)-1].Gbps }

func TestFig9aShape(t *testing.T) {
	fig, err := RunFig9a(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("%d series, want phys + 3 switch latencies", len(fig.Series))
	}
	phys, l50, l150 := fig.Series[0], fig.Series[1], fig.Series[3]

	// The simulated platform tracks the physical reference from below:
	// "the performance of our IDE disk is within 80%~90% of the Intel
	// p3700 SSD... and more importantly, it follows the same trend".
	for i := range phys.Points {
		ratio := l150.Points[i].Gbps / phys.Points[i].Gbps
		if ratio < 0.6 || ratio > 1.0 {
			t.Errorf("sim/phys ratio at %dMB = %.2f, want within (0.6, 1.0)", phys.Points[i].X, ratio)
		}
	}
	// Throughput grows with block size in every series (startup
	// overhead amortizes).
	for _, s := range fig.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Gbps <= s.Points[i-1].Gbps {
				t.Errorf("series %s not monotone in block size", s.Label)
			}
		}
	}
	// Lower switch latency helps, but only slightly ("accounts for ~3%
	// of the total throughput").
	gain := lastGbps(l50)/lastGbps(l150) - 1
	if gain <= 0 {
		t.Error("50ns switch must beat 150ns")
	}
	if gain > 0.10 {
		t.Errorf("switch latency gain %.1f%% too large; paper reports ~3%%", gain*100)
	}
}

func TestFig9bShape(t *testing.T) {
	fig, err := RunFig9b(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	x1, x2, x4, x8 := fig.Series[0], fig.Series[1], fig.Series[2], fig.Series[3]

	// "We observe a 1.67x increase in the throughput when increasing
	// the link width from x1 to x2" — sublinear because OS overhead
	// does not scale.
	r12 := lastGbps(x2) / lastGbps(x1)
	if r12 < 1.4 || r12 > 1.9 {
		t.Errorf("x2/x1 = %.2f, want ~1.67", r12)
	}
	// "We have a smaller increase... from x2 to x4."
	r24 := lastGbps(x4) / lastGbps(x2)
	if r24 >= r12 {
		t.Errorf("x4/x2 = %.2f must be below x2/x1 = %.2f", r24, r12)
	}
	// x8 congests: double-digit replay rate on the congested upstream
	// link where x2/x4 are clean (paper: 27% vs almost zero).
	if p := x8.Points[len(x8.Points)-1]; p.ReplayPct < 10 {
		t.Errorf("x8 replay = %.1f%%, want double digits", p.ReplayPct)
	}
	for _, s := range []Series{x1, x2, x4} {
		if p := s.Points[len(s.Points)-1]; p.ReplayPct > 1 {
			t.Errorf("%s replay = %.1f%%, want ~0", s.Label, p.ReplayPct)
		}
	}
	// The x8 congestion collapse: x8 gains almost nothing over x4
	// (the paper measures an outright drop; see EXPERIMENTS.md for the
	// residual deviation).
	r48 := lastGbps(x8) / lastGbps(x4)
	if r48 > 1.15 {
		t.Errorf("x8/x4 = %.2f; congestion must flatten the scaling", r48)
	}
}

func TestFig9cShape(t *testing.T) {
	fig, err := RunFig9c(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rb1, rb2, rb3, rb4 := fig.Series[0], fig.Series[1], fig.Series[2], fig.Series[3]
	// Source throttling: replay buffers 1-2 keep the link healthy.
	for _, s := range []Series{rb1, rb2} {
		if p := s.Points[len(s.Points)-1]; p.TimeoutPct > 1 {
			t.Errorf("%s timeout = %.1f%%, want ~0 (source throttling)", s.Label, p.TimeoutPct)
		}
	}
	// Deeper replay buffers overrun the port buffers and time out.
	for _, s := range []Series{rb3, rb4} {
		if p := s.Points[len(s.Points)-1]; p.ReplayPct < 5 {
			t.Errorf("%s replay = %.1f%%, want significant", s.Label, p.ReplayPct)
		}
	}
	// rb=1 pays for its tiny window with real throughput.
	if lastGbps(rb1) >= lastGbps(rb2) {
		t.Error("rb1 must be slower than rb2 (window of one)")
	}
}

func TestFig9dShape(t *testing.T) {
	fig, err := RunFig9d(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	pb16 := fig.Series[0]
	pb28 := fig.Series[3]
	// Bigger port buffers monotonically reduce the replay pressure
	// (paper: timeouts 27% -> 20% -> 0 -> 0).
	prev := 1e9
	for _, s := range fig.Series {
		p := s.Points[len(s.Points)-1]
		if p.ReplayPct > prev+0.5 {
			t.Errorf("replay %% not non-increasing at %s: %.1f after %.1f", s.Label, p.ReplayPct, prev)
		}
		prev = p.ReplayPct
	}
	if a, b := pb16.Points[len(pb16.Points)-1], pb28.Points[len(pb28.Points)-1]; b.ReplayPct >= a.ReplayPct {
		t.Errorf("pb28 replay %.1f%% must be below pb16's %.1f%%", b.ReplayPct, a.ReplayPct)
	}
	if lastGbps(pb28) < lastGbps(pb16)*0.99 {
		t.Error("bigger buffers must not hurt throughput")
	}
}

func TestTableIIShape(t *testing.T) {
	rows, err := RunTableII(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{318, 358, 398, 438, 517} // the paper's Table II
	if len(rows) != len(want) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, row := range rows {
		// Within 10% of the paper's absolute numbers.
		lo, hi := want[i]*0.9, want[i]*1.1
		if row.MMIOLatencyNs < lo || row.MMIOLatencyNs > hi {
			t.Errorf("rc=%dns: MMIO %.0fns, paper %.0fns (want within 10%%)",
				row.RCLatencyNs, row.MMIOLatencyNs, want[i])
		}
		// Every 25ns of RC latency must cost more than 25ns of MMIO
		// latency (request and response both cross the RC).
		if i > 0 {
			delta := row.MMIOLatencyNs - rows[i-1].MMIOLatencyNs
			if delta <= 25 {
				t.Errorf("step %d: +%.0fns per +25ns RC latency, want > 25", i, delta)
			}
		}
	}
}

func TestTableIContents(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	if rows[0].Overhead != "12B" || rows[1].Overhead != "2B" ||
		rows[2].Overhead != "4B" || rows[3].Overhead != "2B" {
		t.Errorf("overhead bytes wrong: %+v", rows)
	}
	if rows[4].Overhead != "8/10-128/130" {
		t.Errorf("encoding row = %q", rows[4].Overhead)
	}
	for _, r := range rows[:3] {
		if r.PacketType != "TLP" {
			t.Errorf("%s applies to %q, want TLP", r.Type, r.PacketType)
		}
	}
	for _, r := range rows[3:] {
		if r.PacketType != "TLP and DLLP" {
			t.Errorf("%s applies to %q", r.Type, r.PacketType)
		}
	}
}

func TestDeviceLevelSectorThroughput(t *testing.T) {
	// §VI-B: "If we remove the OS overheads and make our measurements
	// at the gem5 device level, each sector (4KB) of the IDE disk is
	// transferred with a throughput of 3.072 Gbps over our PCI-Express
	// link." Our device-level number for a Gen2 x1 link must land close
	// to the 3.05 Gb/s protocol bound.
	s := New(DefaultConfig())
	if _, err := s.RunDD(512 << 10); err != nil {
		t.Fatal(err)
	}
	window := s.Disk.DMAWindow() // spans the final 128 KiB command
	sectors := 32.0
	gbps := sectors * 4096 * 8 / window.Seconds() / 1e9
	if gbps < 2.4 || gbps > 3.1 {
		t.Errorf("device-level sector throughput = %.3f Gb/s, want ~2.7-3.0 (paper: 3.072)", gbps)
	}
}

func TestFigureFormatting(t *testing.T) {
	fig := Figure{
		ID: "t", Title: "x",
		Series: []Series{{Label: "a", Points: []Point{{X: 64, Gbps: 1.5, ReplayPct: 2}}}},
	}
	txt := fig.Format()
	if !strings.Contains(txt, "block(MB)") || !strings.Contains(txt, "1.500") {
		t.Errorf("Format output:\n%s", txt)
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "t,a,64,1.5000,2.00,0.00") {
		t.Errorf("CSV output:\n%s", csv)
	}
}

func TestFigFCShape(t *testing.T) {
	fig, err := RunFigFC(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) < 5 {
		t.Fatalf("%d points, want the full credit sweep", len(fig.Points))
	}
	inf, last := fig.Points[0], fig.Points[len(fig.Points)-1]
	if inf.Credits != 0 || inf.CplStalls != 0 || inf.UpdateFCs != 0 {
		t.Fatalf("first point must be the legacy infinite-credit baseline: %+v", inf)
	}

	// Shrinking the completion pool never helps: throughput is
	// monotonically non-increasing as credits shrink (0.5% tolerance for
	// sub-request timing jitter between runs).
	for i := 1; i < len(fig.Points); i++ {
		prev, cur := fig.Points[i-1], fig.Points[i]
		if cur.Gbps > prev.Gbps*1.005 {
			t.Errorf("throughput rose as credits shrank: %s=%.3f after %s=%.3f",
				cur.CreditsLabel(), cur.Gbps, prev.CreditsLabel(), prev.Gbps)
		}
	}

	// The knee: generous pools match the baseline (credits cover the
	// link's bandwidth-delay product), then the starved end collapses.
	generous := fig.Points[1] // the widest finite pool
	if generous.Gbps < inf.Gbps*0.9 {
		t.Errorf("generous credits (%s=%.3f) must ride the baseline plateau (%.3f)",
			generous.CreditsLabel(), generous.Gbps, inf.Gbps)
	}
	if last.Gbps > inf.Gbps*0.7 {
		t.Errorf("starved pool (%s=%.3f) must collapse below 0.7x baseline (%.3f)",
			last.CreditsLabel(), last.Gbps, inf.Gbps)
	}

	// Starvation is observable, not silent: the collapsed point shows
	// credit stalls and a stretched request tail, and every finite point
	// carries UpdateFC traffic.
	if last.CplStalls == 0 {
		t.Errorf("starved pool must count Cpl credit stalls: %+v", last)
	}
	if last.ReqLat.P99 <= inf.ReqLat.P99 {
		t.Errorf("starvation must stretch the p99 request latency: %v vs %v",
			last.ReqLat.P99, inf.ReqLat.P99)
	}
	for _, p := range fig.Points[1:] {
		if p.UpdateFCs == 0 {
			t.Errorf("finite point %s has no UpdateFC traffic", p.CreditsLabel())
		}
	}

	csv := fig.CSV()
	if !strings.Contains(csv, "cpl_hdr_credits") || !strings.Contains(csv, "figfc,inf,") {
		t.Errorf("CSV missing expected columns/rows:\n%s", csv)
	}
	if out := fig.Format(); !strings.Contains(out, "cpl_stalls") {
		t.Errorf("Format missing header:\n%s", out)
	}
}

func TestFigDegradeShape(t *testing.T) {
	fig, err := RunFigDegrade(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 5 {
		t.Fatalf("%d scenarios, want full + 3 ladder levels + recovered", len(fig.Points))
	}
	byName := map[string]DegradePoint{}
	for _, p := range fig.Points {
		byName[p.Scenario] = p
	}
	full := byName["full"]
	if full.Downtrains != 0 || full.Level != 0 || full.Errored != 0 || full.Gbps <= 0 {
		t.Fatalf("full scenario not clean: %+v", full)
	}

	// The staircase: throughput steps down through the held ladder
	// levels, and correctness never suffers — downtraining is a speed
	// change, not an error path.
	steps := []DegradePoint{full, byName["down1"], byName["down2"], byName["down3"]}
	for i, p := range steps {
		if p.Errored != 0 {
			t.Errorf("%s: downtraining must not error requests: %+v", p.Scenario, p)
		}
		if uint64(i) != p.Downtrains || p.Level != i {
			t.Errorf("%s: want %d downtrains holding level %d, got %d at level %d",
				p.Scenario, i, i, p.Downtrains, p.Level)
		}
		if i > 0 && p.Gbps >= steps[i-1].Gbps {
			t.Errorf("staircase not monotone: %s %.3f >= %s %.3f",
				p.Scenario, p.Gbps, steps[i-1].Scenario, steps[i-1].Gbps)
		}
	}
	// The ladder floor is x1 at Gen1.
	d3 := byName["down3"]
	if d3.Width != 1 || d3.Gen != Gen1 {
		t.Errorf("down3 must sit at x1 Gen1, got %v x%d", d3.Gen, d3.Width)
	}

	// The recovering link climbs all the way back and beats the floor.
	rec := byName["recovered"]
	if rec.Uptrains != 3 || rec.Level != 0 {
		t.Errorf("recovered must uptrain back to level 0: %+v", rec)
	}
	if rec.Width != 4 || rec.Gen != Gen2 {
		t.Errorf("recovered must end at x4 Gen2, got %v x%d", rec.Gen, rec.Width)
	}
	if rec.Gbps <= d3.Gbps {
		t.Errorf("recovered (%.3f) must beat the held floor (%.3f)", rec.Gbps, d3.Gbps)
	}
	if rec.Errored != 0 {
		t.Errorf("upgrade retrains must not error requests: %+v", rec)
	}

	csv := fig.CSV()
	if !strings.Contains(csv, "downtrains") || !strings.Contains(csv, "figdegrade,recovered,") {
		t.Errorf("CSV missing expected columns/rows:\n%s", csv)
	}
	if out := fig.Format(); !strings.Contains(out, "scenario") {
		t.Errorf("Format missing header:\n%s", out)
	}
}

func TestHotplugCampaign(t *testing.T) {
	const seeds = 8
	c, err := RunHotplugCampaign(seeds, testOptions())
	if err != nil {
		t.Fatal(err) // a hung run surfaces here as a wedged-task error
	}
	if len(c.Points) != seeds {
		t.Fatalf("%d points, want %d", len(c.Points), seeds)
	}
	for _, p := range c.Points {
		if p.Removals != 1 {
			t.Errorf("%s: want exactly one removal, got %d", p.Scenario, p.Removals)
		}
		if p.Triggers == 0 {
			t.Errorf("%s: DPC never triggered", p.Scenario)
		}
		if p.Permanent {
			if p.Reinserts != 0 || p.Abandoned == 0 || p.Recovered != 0 {
				t.Errorf("%s: permanent removal must end abandoned: %+v", p.Scenario, p)
			}
		} else {
			if p.Reinserts != 1 || p.Recovered == 0 {
				t.Errorf("%s: re-seated card must end recovered: %+v", p.Scenario, p)
			}
		}
	}
	if c.RecoveredRuns != seeds-seeds/4 || c.AbandonedRuns != seeds/4 {
		t.Errorf("want %d recovered / %d abandoned, got %d / %d",
			seeds-seeds/4, seeds/4, c.RecoveredRuns, c.AbandonedRuns)
	}
	if out := c.Format(); !strings.Contains(out, "hung: 0") {
		t.Errorf("Format missing summary:\n%s", out)
	}
}

func TestFigErrShape(t *testing.T) {
	fig, err := RunFigErr(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 7 {
		t.Fatalf("%d scenarios, want clean + 4 rates + window + dead", len(fig.Points))
	}
	byName := map[string]ErrPoint{}
	for _, p := range fig.Points {
		byName[p.Scenario] = p
	}
	clean := byName["clean"]
	if clean.Errored != 0 || clean.ReplayPct != 0 || clean.BadDLLPs != 0 || clean.Gbps <= 0 {
		t.Fatalf("clean scenario not clean: %+v", clean)
	}

	// Stochastic corruption: replay pressure grows with the rate, the
	// workload slows down, and correctness never suffers.
	lo, hi := byName["p=1e-3"], byName["p=5e-2"]
	if lo.Errored != 0 || hi.Errored != 0 {
		t.Errorf("stochastic corruption must be recovered by replay: %+v %+v", lo, hi)
	}
	if hi.ReplayPct <= lo.ReplayPct {
		t.Errorf("replay%% must grow with the injection rate: %.2f vs %.2f", lo.ReplayPct, hi.ReplayPct)
	}
	if hi.Gbps >= clean.Gbps {
		t.Errorf("heavy corruption (%.3f) must be slower than clean (%.3f)", hi.Gbps, clean.Gbps)
	}
	if hi.BadDLLPs == 0 || hi.Dropped == 0 {
		t.Errorf("DLLP corruption and drops must be visible in the counters: %+v", hi)
	}

	// The transient window retrains once and loses nothing.
	win := byName["down50us"]
	if win.Retrains != 1 || win.Errored != 0 || win.LinkDead {
		t.Errorf("down50us must retrain once and complete clean: %+v", win)
	}

	// The dead link is contained, not survived.
	dead := byName["dead"]
	if !dead.LinkDead {
		t.Fatalf("dead scenario did not kill the link: %+v", dead)
	}
	if dead.Errored == 0 || dead.Errored >= dead.Requests {
		t.Errorf("dead link wants a mix of clean and errored requests: %+v", dead)
	}
	if dead.CompletionTimeouts == 0 {
		t.Errorf("the RC must synthesize error completions on a dead link: %+v", dead)
	}
	if dead.Gbps >= clean.Gbps {
		t.Errorf("a dead link (%.3f) must be slower than clean (%.3f)", dead.Gbps, clean.Gbps)
	}

	csv := fig.CSV()
	if !strings.Contains(csv, "completion_timeouts") || !strings.Contains(csv, "figerr,dead,") {
		t.Errorf("CSV missing expected columns/rows:\n%s", csv)
	}
	if out := fig.Format(); !strings.Contains(out, "scenario") {
		t.Errorf("Format missing header:\n%s", out)
	}
}

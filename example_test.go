package pciesim_test

import (
	"fmt"

	"pciesim"
)

// Build the paper's validated platform, boot it, and run a dd block
// read through the PCI-Express fabric.
func ExampleNew() {
	cfg := pciesim.DefaultConfig()
	cfg.DD.StartupOverhead = 0 // steady-state number for a small demo block
	sys := pciesim.New(cfg)

	topo, err := sys.Boot()
	if err != nil {
		panic(err)
	}
	fmt.Printf("functions: %d, buses: %d\n", len(topo.All), topo.Buses)

	res, err := sys.RunDD(1 << 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dd moved %d bytes in %d requests\n", res.Bytes, res.Requests)
	// Output:
	// functions: 8, buses: 7
	// dd moved 1048576 bytes in 8 requests
}

// Regenerate the paper's Table II (MMIO read latency vs root complex
// latency).
func ExampleRunTableII() {
	rows, err := pciesim.RunTableII(1)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Printf("rc=%dns mmio=%.0fns\n", r.RCLatencyNs, r.MMIOLatencyNs)
	}
	// Output:
	// rc=50ns mmio=318ns
	// rc=75ns mmio=368ns
	// rc=100ns mmio=418ns
	// rc=125ns mmio=468ns
	// rc=150ns mmio=518ns
}

// Explore a hypothetical configuration: what does an x8 disk link do to
// the data-link layer?
func ExampleConfig() {
	cfg := pciesim.DefaultConfig()
	cfg.DD.StartupOverhead = 0
	cfg.UplinkWidth = 8
	cfg.DiskLinkWidth = 8
	sys := pciesim.New(cfg)
	if _, err := sys.RunDD(1 << 20); err != nil {
		panic(err)
	}
	st := sys.Uplink.Down().Stats()
	fmt.Printf("upstream link replayed TLPs: %v\n", st.ReplaysTx > 0)
	// Output:
	// upstream link replayed TLPs: true
}

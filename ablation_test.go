package pciesim

import "testing"

// Ablations for the design choices DESIGN.md calls out: the posted
// write extension the paper names as future work, and link-level error
// injection exercising the NAK path under a full-system workload.

// TestPostedWriteAblation quantifies §VI-B's claim: "Another factor
// that reduces the bandwidth offered by the gem5 PCI-Express model is
// the fact that we do not support posted write requests."
func TestPostedWriteAblation(t *testing.T) {
	run := func(posted bool) float64 {
		cfg := DefaultConfig()
		cfg.DD.StartupOverhead /= 64
		cfg.Disk.PostedWrites = posted
		s := New(cfg)
		res, err := s.RunDD(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputGbps()
	}
	nonPosted := run(false)
	posted := run(true)
	if posted <= nonPosted {
		t.Errorf("posted writes (%.3f Gb/s) must beat the paper's non-posted model (%.3f Gb/s)",
			posted, nonPosted)
	}
	// The gain is the per-sector response barrier, a modest (not 2x)
	// effect — matching the paper's framing of it as one contributing
	// factor.
	if posted > nonPosted*1.5 {
		t.Errorf("posted-write gain %.2fx implausibly large", posted/nonPosted)
	}
	t.Logf("non-posted %.3f Gb/s -> posted %.3f Gb/s (+%.1f%%)",
		nonPosted, posted, (posted/nonPosted-1)*100)
}

// TestErrorInjectionFullSystem runs dd over a disk link that corrupts
// 1% of TLPs: the NAK/replay machinery must preserve the workload's
// correctness end to end, at some throughput cost.
func TestErrorInjectionFullSystem(t *testing.T) {
	run := func(rate float64) (float64, LinkStats) {
		cfg := DefaultConfig()
		cfg.DD.StartupOverhead /= 64
		cfg.DiskLinkErrorRate = rate
		cfg.Seed = 7
		s := New(cfg)
		res, err := s.RunDD(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		cmds, sectors := s.Disk.Stats()
		if cmds != 8 || sectors != 256 {
			t.Fatalf("workload incomplete under error rate %v: %d cmds %d sectors", rate, cmds, sectors)
		}
		return res.ThroughputGbps(), s.DiskLink.Down().Stats()
	}
	clean, st := run(0)
	if st.NaksRx != 0 {
		t.Error("clean run saw NAKs")
	}
	lossy, st := run(0.01)
	if st.NaksRx == 0 {
		t.Error("1% corruption produced no NAKs")
	}
	if lossy >= clean {
		t.Errorf("corruption should cost throughput: %.3f vs %.3f", lossy, clean)
	}
	if lossy < clean*0.5 {
		t.Errorf("1%% corruption halved throughput (%.3f vs %.3f); replay storm suspected", lossy, clean)
	}
	t.Logf("clean %.3f Gb/s, 1%% TLP corruption %.3f Gb/s, %d NAKs", clean, lossy, st.NaksRx)
}
